package engine

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"servicefridge/internal/obs"
	"servicefridge/internal/schemes"
	"servicefridge/internal/sim"
	"servicefridge/internal/telemetry"
)

// fingerprint serializes everything a run exports — latency summaries,
// meter readings, trace counts, orchestrator actions, the event JSONL and
// the telemetry CSV — so two runs compare byte-for-byte.
func fingerprint(t *testing.T, res *Result) string {
	t.Helper()
	var b bytes.Buffer
	for _, region := range []string{"", "A", "B"} {
		s := res.Summary(region)
		fmt.Fprintf(&b, "region=%q count=%d mean=%d p90=%d p95=%d p99=%d min=%d max=%d sd=%d\n",
			region, s.Count, s.Mean, s.P90, s.P95, s.P99, s.Min, s.Max, s.StdDev)
	}
	for _, cs := range res.Meter.ClusterSamples() {
		fmt.Fprintf(&b, "cs at=%d total=%v dyn=%v util=%v\n", cs.At, cs.Total, cs.Dynamic, cs.Util)
	}
	for _, smp := range res.Meter.Samples() {
		fmt.Fprintf(&b, "s at=%d srv=%s f=%v u=%v p=%v\n", smp.At, smp.Server, smp.Freq, smp.Util, smp.Power)
	}
	fmt.Fprintf(&b, "traces=%d launched=%d completed=%d migrations=%d crashes=%d\n",
		len(res.Collector.Traces()), res.Executor.Launched(), res.Executor.Completed(),
		res.Orch.Migrations(), res.Orch.Crashes())
	svcs := make([]string, 0, len(res.FreqSeries))
	for svc := range res.FreqSeries {
		svcs = append(svcs, svc)
	}
	sort.Strings(svcs)
	for _, svc := range svcs {
		for _, p := range res.FreqSeries[svc] {
			fmt.Fprintf(&b, "fp %s at=%d host=%s f=%v\n", svc, p.At, p.Host, p.Freq)
		}
	}
	if res.Config.Events != nil {
		if err := res.Config.Events.WriteJSONL(&b); err != nil {
			t.Fatalf("events jsonl: %v", err)
		}
	}
	if res.Config.Telemetry != nil {
		if err := res.Config.Telemetry.WriteCSV(&b); err != nil {
			t.Fatalf("telemetry csv: %v", err)
		}
	}
	if res.Config.Ledger != nil {
		if err := res.Config.Ledger.WriteJSONL(&b); err != nil {
			t.Fatalf("ledger jsonl: %v", err)
		}
	}
	return b.String()
}

// instrumentedConfig returns a config that exercises every stateful
// component: both worker pools, an open loop, events, telemetry and
// frequency tracking. Each call builds fresh instrumentation (telemetry
// binds once).
func instrumentedConfig(scheme string) Config {
	return Config{
		Seed:           7,
		Scheme:         SchemeName(scheme),
		BudgetFraction: 0.8,
		PoolWorkers:    map[string]int{"A": 6, "B": 6},
		OpenLoopRate:   map[string]float64{"A": 40},
		Warmup:         2 * time.Second,
		Duration:       4 * time.Second,
		TrackFreqOf:    []string{"seat"},
		Events:         obs.NewRecorder(4096),
		Telemetry:      telemetry.New(telemetry.Options{}),
		Ledger:         obs.NewLedger(),
	}
}

// TestSnapshotRestoreByteIdentical is the warm-start correctness property:
// for every registered scheme, snapshotting at a random simulation time is
// invisible (the interrupted run finishes byte-identical to a cold run),
// and restoring the snapshot and finishing again replays the exact same
// run a second time.
func TestSnapshotRestoreByteIdentical(t *testing.T) {
	names := schemes.Names()
	sort.Strings(names)
	rng := rand.New(rand.NewSource(42))
	for _, name := range names {
		name := name
		cut := time.Duration(rng.Int63n(int64(6 * time.Second)))
		t.Run(name, func(t *testing.T) {
			cold := Run(instrumentedConfig(name))
			want := fingerprint(t, cold)

			warm := Build(instrumentedConfig(name))
			warm.Engine.RunUntil(sim.Time(cut))
			snap := warm.Snapshot()
			if snap.Now() != warm.Engine.Now() {
				t.Fatalf("snapshot time %v != engine now %v", snap.Now(), warm.Engine.Now())
			}
			warm.Finish()
			if got := fingerprint(t, warm); got != want {
				t.Fatalf("run with snapshot at t=%v diverged from cold run", cut)
			}

			warm.Restore(snap)
			if warm.Engine.Now() != snap.Now() {
				t.Fatalf("restore left clock at %v, want %v", warm.Engine.Now(), snap.Now())
			}
			warm.Finish()
			if got := fingerprint(t, warm); got != want {
				t.Fatalf("restored fork from t=%v diverged from cold run", cut)
			}

			// The snapshot must be reusable: fork a second time.
			warm.Restore(snap)
			warm.Finish()
			if got := fingerprint(t, warm); got != want {
				t.Fatalf("second fork from t=%v diverged from cold run", cut)
			}
		})
	}
}

// TestSnapshotWarmBudgetSweep is the warm-start use case end to end: warm
// up once to the budget-independence barrier, then fork one cell per
// budget fraction and demand byte-identical results to cold runs at the
// same fractions.
func TestSnapshotWarmBudgetSweep(t *testing.T) {
	fractions := []float64{1.0, 0.9, 0.8, 0.75}
	base := func(frac float64) Config {
		cfg := instrumentedConfig("ServiceFridge")
		cfg.BudgetFraction = frac
		return cfg
	}

	donor := Build(base(fractions[0]))
	barrier := donor.WarmBarrier()
	if barrier <= 0 || barrier >= sim.Time(time.Second) {
		t.Fatalf("warm barrier %v outside (0, ControlInterval)", barrier)
	}
	donor.Engine.RunUntil(barrier)
	snap := donor.Snapshot()

	for _, frac := range fractions {
		cold := Run(base(frac))
		want := fingerprint(t, cold)

		donor.Restore(snap)
		donor.SetBudgetFraction(frac)
		donor.Finish()
		if got := fingerprint(t, donor); got != want {
			t.Fatalf("warm cell at fraction %v diverged from cold run", frac)
		}
	}
}

// TestSetBudgetFraction pins the shared-budget plumbing: retargeting the
// result's budget must be visible to the scheme context and the config.
func TestSetBudgetFraction(t *testing.T) {
	res := Build(Config{Scheme: Capping, BudgetFraction: 1.0})
	capBefore := res.Budget.Cap()
	res.SetBudgetFraction(0.5)
	if res.Budget.Fraction != 0.5 || res.Config.BudgetFraction != 0.5 {
		t.Fatalf("fraction = %v / cfg %v, want 0.5", res.Budget.Fraction, res.Config.BudgetFraction)
	}
	if got := res.Budget.Cap(); got >= capBefore {
		t.Fatalf("cap %v did not drop from %v", got, capBefore)
	}
	res.SetBudgetFraction(2.0)
	if res.Budget.Fraction != 1 {
		t.Fatalf("fraction %v not clamped to 1", res.Budget.Fraction)
	}
}
