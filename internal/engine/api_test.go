package engine

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"servicefridge/internal/cluster"
	"servicefridge/internal/schemes"
)

func TestAllSchemesFollowsRegistryCompareOrder(t *testing.T) {
	want := []SchemeName{PFirst, TFirst, ServiceFridge, Capping}
	if got := AllSchemes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("AllSchemes() = %v, want %v (Figure 15-16 column order)", got, want)
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero Config must validate (defaults apply): %v", err)
	}
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error
	}{
		{"unknown scheme", Config{Scheme: "Nonsense"}, `unknown scheme "Nonsense"`},
		{"negative budget", Config{BudgetFraction: -0.5}, "BudgetFraction"},
		{"negative max required", Config{MaxRequired: -1}, "MaxRequired"},
		{"negative workers", Config{Workers: -1}, "Workers"},
		{"negative extra workers", Config{ExtraWorkers: -2}, "ExtraWorkers"},
		{"negative warmup", Config{Warmup: -time.Second}, "Warmup"},
		{"negative control interval", Config{ControlInterval: -time.Second}, "ControlInterval"},
		{"negative meter interval", Config{MeterInterval: -time.Second}, "MeterInterval"},
		{"negative startup delay", Config{StartupDelay: -time.Second}, "StartupDelay"},
		{"pin unknown service", Config{PinTo: map[string]string{"ghost": "serverB"}}, `unknown service "ghost"`},
		{"pin empty node", Config{PinTo: map[string]string{"seat": ""}}, "empty node"},
		{"pool unknown region", Config{PoolWorkers: map[string]int{"Z": 1}}, `unknown region "Z"`},
		{"pool negative size", Config{PoolWorkers: map[string]int{"A": -3}}, "must not be negative"},
		{"openloop unknown region", Config{OpenLoopRate: map[string]float64{"Z": 1}}, `unknown region "Z"`},
		{"openloop negative rate", Config{OpenLoopRate: map[string]float64{"A": -1}}, "must not be negative"},
		{"track unknown service", Config{TrackFreqOf: []string{"ghost"}}, `unknown service "ghost"`},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

func TestBuildEReportsUnknownNodes(t *testing.T) {
	// Node names are only known once the testbed exists, so these surface
	// from BuildE rather than Validate — and must list the real nodes.
	_, err := BuildE(Config{Seed: 1, PinTo: map[string]string{"seat": "ghost"}})
	if err == nil || !strings.Contains(err.Error(), `unknown node "ghost"`) ||
		!strings.Contains(err.Error(), "serverB") {
		t.Fatalf("PinTo ghost node: err = %v, want unknown-node error listing the testbed", err)
	}
	_, err = BuildE(Config{Seed: 1, FixedFreqs: map[string]cluster.GHz{"ghost": 1.8}})
	if err == nil || !strings.Contains(err.Error(), `unknown node "ghost"`) {
		t.Fatalf("FixedFreqs ghost node: err = %v, want unknown-node error", err)
	}
}

func TestRunEReturnsErrorNotPanic(t *testing.T) {
	res, err := RunE(quick(Config{Seed: 1, Scheme: "Nonsense"}))
	if err == nil {
		t.Fatal("RunE with an unknown scheme returned nil error")
	}
	if res != nil {
		t.Fatal("RunE returned a partial Result alongside an error")
	}
}

// TestResultStatsAreMemoized pins the caching contract: repeated Responses
// and Summary queries return the same computed object, and ResetStats
// re-derives them.
func TestResultStatsAreMemoized(t *testing.T) {
	res := Run(quick(Config{Seed: 1}))
	s1 := res.Responses("A")
	s2 := res.Responses("A")
	if s1 != s2 {
		t.Fatal("Responses not memoized: distinct objects for the same region")
	}
	sum1 := res.Summary("A")
	sum2 := res.Summary("A")
	if sum1 != sum2 {
		t.Fatal("Summary not memoized")
	}
	res.ResetStats()
	s3 := res.Responses("A")
	if s3 == s1 {
		t.Fatal("ResetStats did not drop the cache")
	}
	if s3.Summarize() != sum1 {
		t.Fatal("recomputed stats differ from the cached ones on an unchanged run")
	}
}

// TestFreqPointRecordsHostAcrossMigration is the regression test for the
// sampler bug: FreqPoint must carry the host name, so a tracked service's
// frequency series stays attributable when the orchestrator migrates it.
func TestFreqPointRecordsHostAcrossMigration(t *testing.T) {
	res, err := BuildE(Config{
		Seed:        1,
		PinTo:       map[string]string{"seat": "serverB"},
		TrackFreqOf: []string{"seat"},
		Warmup:      time.Second,
		Duration:    9 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Engine.RunFor(3 * time.Second)
	res.Orch.MoveService("seat", []*cluster.Server{res.Cluster.Server("serverC1")})
	res.Engine.RunFor(6 * time.Second)

	pts := res.FreqSeries["seat"]
	if len(pts) < 5 {
		t.Fatalf("only %d frequency samples recorded", len(pts))
	}
	for _, p := range pts {
		if p.Host == "" {
			t.Fatalf("sample at %v has no host", p.At)
		}
		if p.Freq <= 0 {
			t.Fatalf("sample at %v has frequency %v", p.At, p.Freq)
		}
	}
	if pts[0].Host != "serverB" {
		t.Fatalf("first sample on %q, want serverB (pinned placement)", pts[0].Host)
	}
	last := pts[len(pts)-1]
	if last.Host != "serverC1" {
		t.Fatalf("last sample on %q, want serverC1 (post-migration host)", last.Host)
	}
	if res.Orch.Migrations() == 0 {
		t.Fatal("migration did not register")
	}
}

// TestExtensionSchemeRunsThroughEngine: a scheme registered outside
// internal/engine and internal/schemes is buildable by name — the registry
// decouples the engine from the scheme set. Rank 0 keeps it out of
// AllSchemes.
func TestExtensionSchemeRunsThroughEngine(t *testing.T) {
	schemes.Register(schemes.Registration{
		Name: "engine-test-ext",
		New: func(in schemes.BuildInput) schemes.Built {
			return schemes.Built{Scheme: schemes.NewBaseline(in.Ctx)}
		},
	})
	res, err := RunE(quick(Config{Seed: 1, Scheme: "engine-test-ext"}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Executor.Completed() == 0 {
		t.Fatal("extension scheme completed no requests")
	}
	for _, s := range AllSchemes() {
		if s == "engine-test-ext" {
			t.Fatal("rank-0 extension leaked into AllSchemes")
		}
	}
}
