package engine

import (
	"bytes"
	"testing"

	"servicefridge/internal/obs"
)

func instrumentedRun(t *testing.T, seed uint64) (*Result, *obs.Recorder) {
	t.Helper()
	rec := obs.NewRecorder(0)
	res := Run(quick(Config{Seed: seed, Scheme: ServiceFridge, BudgetFraction: 0.8, Events: rec}))
	return res, rec
}

// TestEventStreamDeterministic runs the same instrumented configuration
// twice and requires byte-identical JSONL — the per-run half of the
// cross-parallelism guarantee the CI determinism gate enforces.
func TestEventStreamDeterministic(t *testing.T) {
	encode := func() []byte {
		_, rec := instrumentedRun(t, 3)
		var buf bytes.Buffer
		if err := rec.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if len(a) == 0 {
		t.Fatal("instrumented run emitted no events")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different event streams")
	}
}

// TestEventStreamShape checks the run emits the controller event kinds the
// timeline layer documents, keyed by non-decreasing sim time.
func TestEventStreamShape(t *testing.T) {
	res, rec := instrumentedRun(t, 3)
	if rec.Dropped() != 0 {
		t.Fatalf("ring dropped %d events on a short run", rec.Dropped())
	}
	counts := map[string]int{}
	last := rec.Events()[0]
	for _, r := range rec.Events() {
		counts[r.Ev.Kind()]++
		if r.At < last.At {
			t.Fatalf("event at %v recorded after %v", r.At, last.At)
		}
		last = r
	}
	for _, kind := range []string{"zone_reassign", "power_sample", "migration"} {
		if counts[kind] == 0 {
			t.Fatalf("no %s events recorded (counts %v)", kind, counts)
		}
	}
	if got := counts["migration"]; uint64(got) < res.Orch.Migrations() {
		t.Fatalf("%d migration events for %d orchestrator migrations",
			got, res.Orch.Migrations())
	}
}

// TestInstrumentationDoesNotPerturbRun compares an instrumented run with
// a plain one: recording is passive, so every observable outcome must
// match exactly.
func TestInstrumentationDoesNotPerturbRun(t *testing.T) {
	plain := Run(quick(Config{Seed: 3, Scheme: ServiceFridge, BudgetFraction: 0.8}))
	inst, _ := instrumentedRun(t, 3)
	if plain.Executor.Completed() != inst.Executor.Completed() {
		t.Fatalf("completed %d vs %d", plain.Executor.Completed(), inst.Executor.Completed())
	}
	if plain.Summary("A") != inst.Summary("A") || plain.Summary("B") != inst.Summary("B") {
		t.Fatal("latency summaries diverge under instrumentation")
	}
	if plain.Fridge.Promotions() != inst.Fridge.Promotions() ||
		plain.Fridge.Demotions() != inst.Fridge.Demotions() ||
		plain.Orch.Migrations() != inst.Orch.Migrations() {
		t.Fatal("controller decisions diverge under instrumentation")
	}
}
