package engine

import (
	"testing"
	"time"

	"servicefridge/internal/obs"
	"servicefridge/internal/orchestrator"
)

// countEvents tallies a recorder's stream by kind, checking sim-time
// monotonicity along the way.
func countEvents(t *testing.T, rec *obs.Recorder) map[string]int {
	t.Helper()
	counts := map[string]int{}
	var lastAt int64 = -1
	for _, r := range rec.Events() {
		if int64(r.At) < lastAt {
			t.Fatalf("event stream not time-ordered: %v after %v", r.At, lastAt)
		}
		lastAt = int64(r.At)
		counts[r.Ev.Kind()]++
	}
	return counts
}

// TestChaosContainerCrashUnderFridge injects container crashes mid-run
// while ServiceFridge is actively migrating, and verifies the system
// degrades gracefully: the run completes, no requests are lost mid-flight
// beyond those in the crash window, and the crashed services recover.
func TestChaosContainerCrashUnderFridge(t *testing.T) {
	rec := obs.NewRecorder(0)
	res := Build(quick(Config{Seed: 6, Scheme: ServiceFridge, BudgetFraction: 0.8, Events: rec}))
	res.Orch.SetFailurePolicy(orchestrator.FailurePolicy{
		AutoRestart:  true,
		RestartDelay: 500 * time.Millisecond,
	})
	// Crash a different study service every second.
	victims := []string{"station", "route", "config", "train", "basic"}
	for i, svc := range victims {
		svc := svc
		res.Engine.Schedule(time.Duration(3+i)*time.Second, func() {
			for _, n := range res.Orch.NodesOf(svc) {
				res.Orch.CrashOn(svc, n.Name())
				break
			}
		})
	}
	res.Engine.RunFor(12 * time.Second)
	res.Gen.Stop()
	for _, p := range res.Pools {
		p.Stop()
	}

	if res.Orch.Crashes() == 0 {
		t.Fatal("no crashes were injected")
	}
	if res.Executor.Completed() == 0 {
		t.Fatal("no requests completed under chaos")
	}
	// Every victim must have recovered.
	for _, svc := range victims {
		if res.Orch.Replicas(svc) == 0 {
			t.Errorf("%s never recovered", svc)
		}
	}
	// Requests keep flowing after the crash storm.
	before := res.Executor.Completed()
	res.Engine.RunFor(5 * time.Second)
	if res.Executor.Completed() == before {
		t.Fatal("system wedged after crashes")
	}
	// The event stream mirrors the orchestrator's failure accounting: one
	// Crash event per counted crash, and — with AutoRestart on and the run
	// continuing well past the last injection — one Restart each.
	counts := countEvents(t, rec)
	if got, want := counts["crash"], int(res.Orch.Crashes()); got != want {
		t.Fatalf("%d crash events for %d orchestrator crashes", got, want)
	}
	if got, want := counts["restart"], int(res.Orch.Crashes()); got != want {
		t.Fatalf("%d restart events for %d crashes under AutoRestart", got, want)
	}
}

// TestChaosCrashDuringMigration crashes a container that is mid-migration
// (old instance stopping, new one starting) and checks consistency.
func TestChaosCrashDuringMigration(t *testing.T) {
	rec := obs.NewRecorder(0)
	res := Build(quick(Config{Seed: 7, Scheme: ServiceFridge, BudgetFraction: 0.8, Events: rec}))
	res.Orch.SetFailurePolicy(orchestrator.FailurePolicy{AutoRestart: true})
	// The fridge migrates during the first few ticks; crash ticketinfo
	// right in that window, repeatedly.
	for ms := 1000; ms <= 3000; ms += 250 {
		ms := ms
		res.Engine.Schedule(time.Duration(ms)*time.Millisecond, func() {
			for _, n := range res.Orch.NodesOf("ticketinfo") {
				res.Orch.CrashOn("ticketinfo", n.Name())
				break
			}
		})
	}
	res.Engine.RunFor(12 * time.Second)
	if res.Orch.Replicas("ticketinfo") == 0 {
		t.Fatal("ticketinfo lost permanently")
	}
	if res.Executor.Completed() == 0 {
		t.Fatal("nothing completed")
	}
	counts := countEvents(t, rec)
	if got, want := counts["crash"], int(res.Orch.Crashes()); got != want {
		t.Fatalf("%d crash events for %d orchestrator crashes", got, want)
	}
	if counts["restart"] == 0 {
		t.Fatal("no restart events despite AutoRestart")
	}
}
