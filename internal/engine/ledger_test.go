package engine

import (
	"bytes"
	"testing"
	"time"

	"servicefridge/internal/obs"
	"servicefridge/internal/telemetry"
)

func ledgerBytes(t *testing.T, led *obs.Ledger) string {
	t.Helper()
	var b bytes.Buffer
	if err := led.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestLedgerInstrumentationInvariant is the CLI-vs-control-plane parity
// property: the ledger seals identical bytes whether the run carries just
// the ledger (CLI -ledger), an explicit events recorder (CLI -events
// -ledger), or full telemetry (a control-plane session) — because the
// state digest covers only simulation-visible state and instrumentation
// is passive.
func TestLedgerInstrumentationInvariant(t *testing.T) {
	base := func() Config {
		return Config{
			Seed: 11, Scheme: ServiceFridge, BudgetFraction: 0.8,
			PoolWorkers: map[string]int{"A": 6, "B": 6},
			Warmup:      2 * time.Second, Duration: 4 * time.Second,
		}
	}

	bare := base()
	bare.Ledger = obs.NewLedger()
	Run(bare)
	want := ledgerBytes(t, bare.Ledger)
	if want == "" {
		t.Fatal("ledger sealed nothing")
	}

	withEvents := base()
	withEvents.Ledger = obs.NewLedger()
	withEvents.Events = obs.NewRecorder(0)
	Run(withEvents)
	if got := ledgerBytes(t, withEvents.Ledger); got != want {
		t.Fatal("explicit events recorder changed the ledger")
	}

	withTelemetry := base()
	withTelemetry.Ledger = obs.NewLedger()
	withTelemetry.Events = obs.NewRecorder(0)
	withTelemetry.Telemetry = telemetry.New(telemetry.Options{})
	Run(withTelemetry)
	if got := ledgerBytes(t, withTelemetry.Ledger); got != want {
		t.Fatal("bound telemetry changed the ledger")
	}
}

// TestLedgerDoesNotPerturbRun: attaching a ledger changes no other
// output — same acceptance shape as the events and telemetry layers.
func TestLedgerDoesNotPerturbRun(t *testing.T) {
	cfg := func() Config {
		return Config{
			Seed: 11, Scheme: ServiceFridge, BudgetFraction: 0.8,
			PoolWorkers: map[string]int{"A": 6, "B": 6},
			Warmup:      2 * time.Second, Duration: 4 * time.Second,
			Events: obs.NewRecorder(0),
		}
	}
	plain := Run(cfg())
	ledgered := cfg()
	ledgered.Ledger = obs.NewLedger()
	inst := Run(ledgered)

	// Drop the ledger from the instrumented result so fingerprint compares
	// the outputs both runs share (the plain run has no ledger section).
	inst.Config.Ledger = nil
	if got, want := fingerprint(t, inst), fingerprint(t, plain); got != want {
		t.Fatal("attaching a ledger perturbed the run")
	}
	if ledgered.Ledger.Len() == 0 {
		t.Fatal("ledger sealed nothing")
	}
}

// TestLedgerSeedSensitivity: different seeds produce different chains —
// the ledger actually fingerprints the run, not just its shape.
func TestLedgerSeedSensitivity(t *testing.T) {
	run := func(seed uint64) string {
		cfg := Config{
			Seed: seed, Scheme: ServiceFridge, BudgetFraction: 0.8,
			PoolWorkers: map[string]int{"A": 6, "B": 6},
			Warmup:      2 * time.Second, Duration: 4 * time.Second,
			Ledger: obs.NewLedger(),
		}
		Run(cfg)
		return ledgerBytes(t, cfg.Ledger)
	}
	if run(1) == run(2) {
		t.Fatal("different seeds sealed identical ledgers")
	}
}
