package engine

import (
	"servicefridge/internal/app"
	"servicefridge/internal/cluster"
	"servicefridge/internal/fridge"
	"servicefridge/internal/obs"
	"servicefridge/internal/orchestrator"
	"servicefridge/internal/power"
	"servicefridge/internal/prof"
	"servicefridge/internal/sim"
	"servicefridge/internal/telemetry"
	"servicefridge/internal/trace"
	"servicefridge/internal/workload"
)

// RunState is a complete snapshot of a built run's mutable state, taken
// with Result.Snapshot and rewound with Result.Restore. It composes the
// per-package snapshots of every stateful component: the simulation
// calendar, cluster, orchestrator, meter, trace collector, executor,
// workload generators, the optional Fridge/Telemetry/Events instrumentation
// and the budget.
//
// A RunState is immutable once taken — Restore only reads it — so one
// warmed-up run can be forked any number of times: snapshot after warmup,
// then for each sweep cell restore, retune (e.g. SetBudgetFraction) and
// Finish. Every fork replays exactly the events a cold run with the same
// configuration would execute, byte-identical outputs included.
type RunState struct {
	eng     *sim.EngineState
	cluster *cluster.ClusterState
	orch    *orchestrator.State
	meter   *power.MeterState
	col     *trace.CollectorState
	exec    *app.ExecState
	gen     workload.ClosedLoopState
	pools   map[string]workload.ClosedLoopState
	open    map[string]workload.OpenLoopState
	driver  workload.DriverState // zero unless Config.Profile drives the run
	fridge  *fridge.State        // nil unless the scheme is ServiceFridge
	tel     *telemetry.State     // nil unless Config.Telemetry is bound
	events  *obs.RecorderState   // nil unless Config.Events records
	ledger  *obs.LedgerState     // nil unless Config.Ledger seals
	budget  power.Budget
	freq    map[string][]FreqPoint
}

// Now returns the simulation time the snapshot was taken at.
func (s *RunState) Now() sim.Time { return s.eng.Now() }

// Snapshot captures the run's complete state at the current simulation
// time. FreqSeries rows are append-only and never mutated, so the capture
// keeps slice headers; everything mutated in place is deep-copied by the
// component snapshots.
func (r *Result) Snapshot() *RunState {
	// The profiler is deliberately not part of RunState: profiling
	// accumulates across restores (it measures the process, not the
	// simulated timeline), and keeping it out of the state is what makes
	// it invisible to warm-started forks.
	r.Config.Prof.Enter(prof.Snapshot)
	defer r.Config.Prof.Exit()
	s := &RunState{
		eng:     r.Engine.Snapshot(),
		cluster: r.Cluster.Snapshot(),
		orch:    r.Orch.Snapshot(),
		meter:   r.Meter.Snapshot(),
		col:     r.Collector.Snapshot(),
		exec:    r.Executor.Snapshot(),
		gen:     r.Gen.Snapshot(),
		pools:   make(map[string]workload.ClosedLoopState, len(r.Pools)),
		open:    make(map[string]workload.OpenLoopState, len(r.OpenLoops)),
		events:  r.Config.Events.Snapshot(),
		ledger:  r.Config.Ledger.Snapshot(),
		budget:  *r.Budget,
		freq:    make(map[string][]FreqPoint, len(r.FreqSeries)),
	}
	for region, pool := range r.Pools {
		s.pools[region] = pool.Snapshot()
	}
	for region, ol := range r.OpenLoops {
		s.open[region] = ol.Snapshot()
	}
	if r.Driver != nil {
		s.driver = r.Driver.Snapshot()
	}
	if r.Fridge != nil {
		s.fridge = r.Fridge.Snapshot()
	}
	if r.Config.Telemetry != nil {
		s.tel = r.Config.Telemetry.Snapshot()
	}
	for svc, pts := range r.FreqSeries {
		s.freq[svc] = pts
	}
	return s
}

// Restore rewinds the run to a snapshot previously taken from it. The
// snapshot must come from this same Result: restore works by writing saved
// values back into the live object graph, because the calendar's event
// closures capture pointers into it. Memoized latency statistics are
// dropped (ResetStats) since the collector store rewinds.
func (r *Result) Restore(s *RunState) {
	r.Config.Prof.Enter(prof.Snapshot)
	defer r.Config.Prof.Exit()
	r.Engine.Restore(s.eng)
	r.Cluster.Restore(s.cluster)
	r.Orch.Restore(s.orch)
	r.Meter.Restore(s.meter)
	r.Collector.Restore(s.col)
	r.Executor.Restore(s.exec)
	r.Gen.Restore(s.gen)
	for region, pool := range r.Pools {
		pool.Restore(s.pools[region])
	}
	for region, ol := range r.OpenLoops {
		ol.Restore(s.open[region])
	}
	if r.Driver != nil {
		r.Driver.Restore(s.driver)
	}
	if r.Fridge != nil {
		r.Fridge.Restore(s.fridge)
	}
	if r.Config.Telemetry != nil {
		r.Config.Telemetry.Restore(s.tel)
	}
	r.Config.Events.Restore(s.events)
	r.Config.Ledger.Restore(s.ledger)
	*r.Budget = s.budget
	r.Config.BudgetFraction = s.budget.Fraction
	clear(r.FreqSeries)
	for svc, pts := range s.freq {
		r.FreqSeries[svc] = pts
	}
	r.ResetStats()
}

// SetBudgetFraction retargets the run's power budget in place. The scheme
// context, the meter's budget recording and the telemetry bindings all read
// the shared Budget instance, so the new cap takes effect on the next
// control tick. Warm-started sweeps call this between Restore and Finish to
// turn one warmed-up run into one sweep cell per fraction.
func (r *Result) SetBudgetFraction(fraction float64) {
	r.Budget.SetFraction(fraction)
	r.Config.BudgetFraction = r.Budget.Fraction
}

// WarmBarrier returns the last simulation instant at which the run's state
// is still provably independent of the budget fraction — the latest safe
// snapshot point for a budget sweep. The fraction is first read at the
// first control tick (ControlInterval); instrumented runs also read it at
// the first meter emission (MeterInterval, when Events records) and the
// first telemetry sample (Telemetry.Interval). One nanosecond before the
// earliest of those, nothing budget-dependent has executed yet.
func (r *Result) WarmBarrier() sim.Time {
	cfg := r.Config
	barrier := cfg.ControlInterval
	if cfg.Events != nil && cfg.MeterInterval < barrier {
		barrier = cfg.MeterInterval
	}
	if cfg.Telemetry != nil && cfg.Telemetry.Interval() < barrier {
		barrier = cfg.Telemetry.Interval()
	}
	return sim.Time(barrier) - 1
}

// Finish executes a built (or restored) run to completion: the clock
// advances to Warmup+Duration (or the phase schedule's end, if longer) and
// the generators stop. It is the second half of Build+Finish == Run, and
// the replay step of a warm-started fork.
func (r *Result) Finish() { finish(r) }
