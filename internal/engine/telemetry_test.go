package engine

import (
	"bytes"
	"io"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"servicefridge/internal/obs"
	"servicefridge/internal/telemetry"
)

// telemetryRun runs the standard quick scenario with a bound Telemetry
// and an events recorder, optionally hammering /metrics and /status from
// concurrent scrapers for the whole run.
func telemetryRun(t *testing.T, seed uint64, scrape bool) (*Result, *obs.Recorder, *telemetry.Telemetry) {
	t.Helper()
	rec := obs.NewRecorder(0)
	tel := telemetry.New(telemetry.Options{})
	res, err := BuildE(quick(Config{
		Seed: seed, Scheme: ServiceFridge, BudgetFraction: 0.8,
		Events: rec, Telemetry: tel,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if scrape {
		tel.EnablePublishing()
		srv := httptest.NewServer(telemetry.NewHandler(tel))
		defer srv.Close()
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					for _, path := range []string{"/metrics", "/status", "/healthz"} {
						resp, err := srv.Client().Get(srv.URL + path)
						if err == nil {
							io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
						}
					}
				}
			}()
		}
		defer wg.Wait()
		defer close(stop)
	}
	finish(res)
	return res, rec, tel
}

// TestTelemetryDoesNotPerturbRun is the tentpole's acceptance check:
// a run with telemetry bound — and concurrent scrapers hitting the HTTP
// endpoints throughout — produces byte-identical controller event JSONL
// and identical results to the same seed without telemetry.
func TestTelemetryDoesNotPerturbRun(t *testing.T) {
	plainRec := obs.NewRecorder(0)
	plain := Run(quick(Config{Seed: 3, Scheme: ServiceFridge, BudgetFraction: 0.8, Events: plainRec}))
	inst, instRec, tel := telemetryRun(t, 3, true)

	if plain.Executor.Completed() != inst.Executor.Completed() {
		t.Fatalf("completed %d vs %d", plain.Executor.Completed(), inst.Executor.Completed())
	}
	if plain.Summary("A") != inst.Summary("A") || plain.Summary("B") != inst.Summary("B") {
		t.Fatal("latency summaries diverge under telemetry")
	}
	if plain.Fridge.Promotions() != inst.Fridge.Promotions() ||
		plain.Fridge.Demotions() != inst.Fridge.Demotions() ||
		plain.Orch.Migrations() != inst.Orch.Migrations() {
		t.Fatal("controller decisions diverge under telemetry")
	}
	var a, b bytes.Buffer
	if err := plainRec.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := instRec.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("controller event JSONL diverges under telemetry")
	}
	if tel.Len() == 0 {
		t.Fatal("telemetry sampled nothing")
	}
}

// TestTelemetryCapturesRunState spot-checks that a real run fills the
// probe-backed fields: cluster power, zones, warm utilization, MCF, and
// the latency windows.
func TestTelemetryCapturesRunState(t *testing.T) {
	_, _, tel := telemetryRun(t, 1, false)
	samples := tel.Samples()
	last := samples[len(samples)-1]
	if !last.HasCluster || last.PowerW <= 0 || last.BudgetW <= 0 {
		t.Fatalf("cluster fields unset: %+v", last)
	}
	if !last.HasZones || last.ZoneGHz[0] <= 0 {
		t.Fatalf("zone fields unset: %+v", last)
	}
	if !last.HasMCF {
		t.Fatalf("MCF fields unset: %+v", last)
	}
	// The warm zone can legitimately be empty at any given instant; the
	// probe must have reported utilization at some point in the run.
	var sawWarm bool
	for i := range samples {
		if samples[i].HasWarm {
			sawWarm = true
			break
		}
	}
	if !sawWarm {
		t.Fatal("no sample captured warm-zone utilization")
	}
	if last.All.Count == 0 || last.All.P95 <= 0 {
		t.Fatalf("latency window empty at end of run: %+v", last.All)
	}
	if last.Requests == 0 || last.Spans == 0 {
		t.Fatalf("counters unset: %+v", last)
	}
	var nonEmptyMCF bool
	for _, v := range last.MCF {
		if v > 0 {
			nonEmptyMCF = true
		}
	}
	if !nonEmptyMCF {
		t.Fatal("all MCF values zero at end of run")
	}
}

// TestTelemetryCSVDeterministicAcrossRuns is the per-run half of the CI
// determinism gate on -timeseries exports.
func TestTelemetryCSVDeterministicAcrossRuns(t *testing.T) {
	export := func() []byte {
		_, _, tel := telemetryRun(t, 3, false)
		var buf bytes.Buffer
		if err := tel.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Fatal("same seed produced different timeseries CSV")
	}
}

// TestTelemetrySLOTripsUnderTightBudget drives a heavily throttled run
// long enough for the SLO monitor to trip and checks the report plumbing.
func TestTelemetrySLOTripsUnderTightBudget(t *testing.T) {
	rec := obs.NewRecorder(0)
	tel := telemetry.New(telemetry.Options{
		SLO: telemetry.SLOOptions{
			Target: 35 * time.Millisecond, Grace: 2 * time.Second,
		},
	})
	Run(quick(Config{
		Seed: 1, Scheme: Capping, BudgetFraction: 0.7,
		Events: rec, Telemetry: tel,
	}))
	report := tel.SLOReport()
	if report[0].Series != "all" || report[0].EvalTicks == 0 {
		t.Fatalf("report not evaluated: %+v", report[0])
	}
	var tripped bool
	for _, r := range report {
		if r.FirstViolation >= 0 {
			tripped = true
			if r.ViolationTicks == 0 {
				t.Fatalf("series %s tripped but has no violation ticks", r.Series)
			}
		}
	}
	if !tripped {
		t.Skip("scenario did not violate the tightened SLO; nothing to check")
	}
	if tel.Alerts().Len() == 0 {
		t.Fatal("violations reported but no alert events recorded")
	}
}
