package engine

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"servicefridge/internal/obs"
	"servicefridge/internal/prof"
)

// TestPhaseProfilingIsPassive is the profiler's hard invariant: a run
// with phase profiling enabled produces byte-identical observable
// output — controller event stream, hash-chained ledger, latency
// summaries — to the same run with profiling off. The profiler reads
// the monotonic wall clock and its own counters only; if it ever
// touched sim state or the RNG, the ledger digests would diverge and
// this test would name the first divergent tick.
func TestPhaseProfilingIsPassive(t *testing.T) {
	run := func(enabled bool) (events, ledger, summary string, phaseSecs float64) {
		prof.Reset()
		prof.SetEnabled(enabled)
		defer func() {
			prof.SetEnabled(false)
			prof.Reset()
		}()
		cfg := Config{
			Seed:           7,
			Scheme:         ServiceFridge,
			BudgetFraction: 0.8,
			PoolWorkers:    map[string]int{"A": 10, "B": 10},
			Warmup:         2 * time.Second,
			Duration:       6 * time.Second,
			Events:         obs.NewRecorder(0),
			Ledger:         obs.NewLedger(),
			ProfLabel:      "passivity",
		}
		res, err := RunE(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var ev, led bytes.Buffer
		if err := cfg.Events.WriteJSONL(&ev); err != nil {
			t.Fatal(err)
		}
		if err := cfg.Ledger.WriteJSONL(&led); err != nil {
			t.Fatal(err)
		}
		for _, pt := range prof.Totals() {
			phaseSecs += pt.Seconds
		}
		return ev.String(), led.String(), fmt.Sprintf("%+v", res.Summary("")), phaseSecs
	}

	evOff, ledOff, sumOff, secsOff := run(false)
	evOn, ledOn, sumOn, secsOn := run(true)

	if secsOff != 0 {
		t.Fatalf("disabled run recorded %.6fs of phase time", secsOff)
	}
	if secsOn <= 0 {
		t.Fatal("enabled run recorded no phase time — the profiler never engaged")
	}
	if sumOn != sumOff {
		t.Errorf("latency summary diverged with profiling on:\n  off: %s\n  on:  %s", sumOff, sumOn)
	}
	if evOn != evOff {
		t.Errorf("event stream diverged with profiling on (%d vs %d bytes)", len(evOff), len(evOn))
	}
	if ledOn != ledOff {
		t.Errorf("run ledger diverged with profiling on (%d vs %d bytes)", len(ledOff), len(ledOn))
	}
	if ledOff == "" || evOff == "" {
		t.Fatal("baseline run produced empty observability output; the comparison is vacuous")
	}
}
