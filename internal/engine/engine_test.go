package engine

import (
	"testing"
	"time"

	"servicefridge/internal/cluster"
	"servicefridge/internal/fridge"
	"servicefridge/internal/power"
	"servicefridge/internal/workload"
)

func quick(cfg Config) Config {
	cfg.Warmup = 2 * time.Second
	cfg.Duration = 8 * time.Second
	if cfg.PoolWorkers == nil && cfg.Workers == 0 {
		cfg.PoolWorkers = map[string]int{"A": 5, "B": 5}
	}
	return cfg
}

func TestRunBaselineCompletesRequests(t *testing.T) {
	res := Run(quick(Config{Seed: 1}))
	if res.Executor.Completed() == 0 {
		t.Fatal("no requests completed")
	}
	if res.Summary("A").Count == 0 || res.Summary("B").Count == 0 {
		t.Fatal("missing post-warmup samples")
	}
	if len(res.Meter.ClusterSamples()) == 0 {
		t.Fatal("meter collected nothing")
	}
	// Baseline never changes frequency.
	for _, s := range res.Cluster.Servers() {
		if s.Freq() != cluster.FreqMax {
			t.Fatalf("baseline server %s at %v", s.Name(), s.Freq())
		}
	}
}

func TestRunIsDeterministic(t *testing.T) {
	a := Run(quick(Config{Seed: 9, Scheme: ServiceFridge, BudgetFraction: 0.8}))
	b := Run(quick(Config{Seed: 9, Scheme: ServiceFridge, BudgetFraction: 0.8}))
	if a.Executor.Completed() != b.Executor.Completed() {
		t.Fatalf("completions differ: %d vs %d", a.Executor.Completed(), b.Executor.Completed())
	}
	if a.Summary("A").Mean != b.Summary("A").Mean {
		t.Fatalf("mean differs: %v vs %v", a.Summary("A").Mean, b.Summary("A").Mean)
	}
	if a.Meter.MeanDynamic() != b.Meter.MeanDynamic() {
		t.Fatal("power traces differ")
	}
}

func TestSeedChangesResults(t *testing.T) {
	a := Run(quick(Config{Seed: 1}))
	b := Run(quick(Config{Seed: 2}))
	if a.Summary("A").Mean == b.Summary("A").Mean && a.Summary("B").Mean == b.Summary("B").Mean {
		t.Fatal("different seeds produced identical latencies")
	}
}

func TestEverySchemeRuns(t *testing.T) {
	for _, scheme := range []SchemeName{Baseline, Capping, PFirst, TFirst, ServiceFridge} {
		res := Run(quick(Config{Seed: 3, Scheme: scheme, BudgetFraction: 0.8}))
		if res.Executor.Completed() == 0 {
			t.Fatalf("%s completed nothing", scheme)
		}
		if (scheme == ServiceFridge) != (res.Fridge != nil) {
			t.Fatalf("%s fridge pointer wrong", scheme)
		}
	}
}

func TestUnknownSchemePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(quick(Config{Seed: 1, Scheme: "Nonsense"}))
}

func TestBudgetThrottlesThroughput(t *testing.T) {
	maxReq := CalibrateMaxRequired(quick(Config{Seed: 4}))
	if maxReq <= 0 {
		t.Fatal("calibration returned nothing")
	}
	free := Run(quick(Config{Seed: 4, Scheme: Capping, BudgetFraction: 1.0, MaxRequired: maxReq}))
	tight := Run(quick(Config{Seed: 4, Scheme: Capping, BudgetFraction: 0.75, MaxRequired: maxReq}))
	if tight.Meter.MeanDynamic() >= free.Meter.MeanDynamic() {
		t.Fatalf("75%% budget should reduce dynamic power: %v vs %v",
			tight.Meter.MeanDynamic(), free.Meter.MeanDynamic())
	}
	if tight.Summary("A").Mean <= free.Summary("A").Mean {
		t.Fatal("capping below required power should cost latency")
	}
}

func TestMaxRequiredSetsBudgetBase(t *testing.T) {
	res := Build(Config{Seed: 1, MaxRequired: power.Watts(400), BudgetFraction: 0.8})
	if res.Budget.MaxPower() != 400 {
		t.Fatalf("budget base = %v, want 400", res.Budget.MaxPower())
	}
	if res.Budget.Cap() != 320 {
		t.Fatalf("cap = %v, want 320", res.Budget.Cap())
	}
}

func TestPinToExcludesNodeFromRoundRobin(t *testing.T) {
	res := Build(Config{Seed: 1, PinTo: map[string]string{"seat": "serverB"}})
	nodes := res.Orch.NodesOf("seat")
	if len(nodes) != 1 || nodes[0].Name() != "serverB" {
		t.Fatalf("seat on %v, want serverB", nodes)
	}
	if got := res.Orch.ServicesOn(res.Cluster.Server("serverB")); len(got) != 1 {
		t.Fatalf("serverB hosts %v, want only the pinned service", got)
	}
}

func TestFixedFreqsApplied(t *testing.T) {
	res := Run(quick(Config{Seed: 1, FixedFreqs: map[string]cluster.GHz{"serverB": 1.8}}))
	if got := res.Cluster.Server("serverB").Freq(); got != 1.8 {
		t.Fatalf("serverB at %v, want 1.8 (fixed frequency must survive the run)", got)
	}
}

func TestFixedFreqsUnknownNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(Config{Seed: 1, FixedFreqs: map[string]cluster.GHz{"ghost": 1.8}})
}

func TestPhasesDriveWorkers(t *testing.T) {
	res := Build(Config{
		Seed: 1,
		Mix:  workload.Ratio(1, 1),
		Phases: []workload.Phase{
			{Duration: 5 * time.Second, Workers: 2},
			{Duration: 5 * time.Second, Workers: 8},
		},
		Warmup:   time.Second,
		Duration: 9 * time.Second,
	})
	res.Engine.RunFor(3 * time.Second)
	if res.Gen.Workers() != 2 {
		t.Fatalf("phase-1 workers = %d, want 2", res.Gen.Workers())
	}
	res.Engine.RunFor(6 * time.Second)
	if res.Gen.Workers() != 8 {
		t.Fatalf("phase-2 workers = %d, want 8", res.Gen.Workers())
	}
	if res.Executor.Completed() == 0 {
		t.Fatal("phased run completed nothing")
	}
}

func TestTrackFreqOfRecordsSeries(t *testing.T) {
	res := Run(quick(Config{
		Seed: 1, Scheme: ServiceFridge, BudgetFraction: 0.8,
		TrackFreqOf: []string{"ticketinfo", "config"},
	}))
	if len(res.FreqSeries["ticketinfo"]) == 0 || len(res.FreqSeries["config"]) == 0 {
		t.Fatal("frequency series not recorded")
	}
}

func TestTuneReachesFridge(t *testing.T) {
	touched := false
	Run(quick(Config{
		Seed: 1, Scheme: ServiceFridge,
		Tune: func(f *fridge.Fridge) {
			touched = true
			f.LoadOverride = map[string]float64{"B": 30}
		},
	}))
	if !touched {
		t.Fatal("Tune hook not invoked")
	}
}

func TestPerRegionPoolsLaunchBothRegions(t *testing.T) {
	res := Run(quick(Config{Seed: 1, PoolWorkers: map[string]int{"A": 3, "B": 7}}))
	if res.Pools["A"].Launched() == 0 || res.Pools["B"].Launched() == 0 {
		t.Fatal("pools did not launch")
	}
	// B requests are far shorter, so the B pool must complete many more.
	if res.Pools["B"].Launched() <= res.Pools["A"].Launched() {
		t.Fatal("B pool should outpace A pool")
	}
}

func TestFridgeStaysNearBudgetOnAverage(t *testing.T) {
	maxReq := CalibrateMaxRequired(quick(Config{Seed: 5}))
	res := Run(quick(Config{Seed: 5, Scheme: ServiceFridge, BudgetFraction: 0.8, MaxRequired: maxReq}))
	cap := res.Budget.Cap()
	var mean power.Watts
	for _, cs := range res.Meter.ClusterSamples() {
		mean += cs.Total
	}
	mean /= power.Watts(len(res.Meter.ClusterSamples()))
	// The controller is reactive; allow a 10% average overshoot.
	if float64(mean) > float64(cap)*1.10 {
		t.Fatalf("mean draw %v far above cap %v", mean, cap)
	}
}
